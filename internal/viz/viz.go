// Package viz renders the paper's two figure styles — box-and-whisker
// download-time plots and log-scale CCDF curves — as terminal
// graphics, so paperbench output visually mirrors the figures it
// regenerates.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"mptcplab/internal/stats"
)

// BoxPlot renders horizontal box-and-whisker rows on one shared axis,
// like the paper's per-size download-time panels.
type BoxPlot struct {
	// Title is printed above the plot.
	Title string
	// Unit labels the axis (e.g. "s").
	Unit string
	// Width is the plot area in characters (default 60).
	Width int
	// Log selects a logarithmic axis, useful when configurations span
	// orders of magnitude (SP-Sprint vs MPTCP).
	Log bool

	rows []boxRow
}

type boxRow struct {
	label string
	box   stats.Box
}

// Add appends one labeled box.
func (p *BoxPlot) Add(label string, b stats.Box) {
	p.rows = append(p.rows, boxRow{label: label, box: b})
}

func (p *BoxPlot) width() int {
	if p.Width <= 0 {
		return 60
	}
	return p.Width
}

// Render draws the plot.
//
//	SP-WiFi   ├──────[▒▒▒▒│▒▒]────┤
//	MP-ATT    ├─[▒│▒]─┤
func (p *BoxPlot) Render(w io.Writer) {
	if len(p.rows) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, r := range p.rows {
		lo = math.Min(lo, r.box.Min)
		hi = math.Max(hi, r.box.Max)
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	scale := p.scaler(lo, hi)

	if p.Title != "" {
		fmt.Fprintf(w, "%s\n", p.Title)
	}
	for _, r := range p.rows {
		line := make([]rune, p.width())
		for i := range line {
			line[i] = ' '
		}
		set := func(pos int, ch rune) {
			if pos >= 0 && pos < len(line) {
				line[pos] = ch
			}
		}
		b := r.box
		iMin, iQ1, iMed, iQ3, iMax := scale(b.Min), scale(b.Q1), scale(b.Median), scale(b.Q3), scale(b.Max)
		for i := iMin; i <= iMax; i++ {
			set(i, '─')
		}
		for i := iQ1; i <= iQ3; i++ {
			set(i, '▒')
		}
		set(iMin, '├')
		set(iMax, '┤')
		set(iMed, '│')
		fmt.Fprintf(w, "  %-*s %s  %s\n", labelW, r.label, string(line),
			fmtVal(b.Median)+p.Unit)
	}
	// Axis line with end labels.
	fmt.Fprintf(w, "  %-*s %s\n", labelW, "", strings.Repeat("·", p.width()))
	fmt.Fprintf(w, "  %-*s %-*s%s\n", labelW, "",
		p.width()-len(fmtVal(hi)+p.Unit), fmtVal(lo)+p.Unit, fmtVal(hi)+p.Unit)
}

// scaler maps a value to a column.
func (p *BoxPlot) scaler(lo, hi float64) func(float64) int {
	n := p.width() - 1
	if p.Log && lo > 0 {
		llo, lhi := math.Log(lo), math.Log(hi)
		return func(v float64) int {
			if v <= 0 {
				return 0
			}
			return clamp(int(math.Round((math.Log(v)-llo)/(lhi-llo)*float64(n))), 0, n)
		}
	}
	return func(v float64) int {
		return clamp(int(math.Round((v-lo)/(hi-lo)*float64(n))), 0, n)
	}
}

// LineChart renders one or more (x, y) series on a character grid —
// the CCDF figures. X may be logarithmic, as in the paper's Figures
// 12/13.
type LineChart struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	XLog           bool

	series []chartSeries
}

type chartSeries struct {
	name   string
	xs, ys []float64
	mark   rune
}

// seriesMarks are assigned to series in order.
var seriesMarks = []rune{'●', '○', '▲', '△', '■', '□', '◆', '◇', '*', '+'}

// AddSeries appends a named series; xs and ys must have equal length.
func (c *LineChart) AddSeries(name string, xs, ys []float64) {
	mark := seriesMarks[len(c.series)%len(seriesMarks)]
	c.series = append(c.series, chartSeries{name: name, xs: xs, ys: ys, mark: mark})
}

func (c *LineChart) dims() (wd, ht int) {
	wd, ht = c.Width, c.Height
	if wd <= 0 {
		wd = 64
	}
	if ht <= 0 {
		ht = 16
	}
	return
}

// Render draws the chart with a legend.
func (c *LineChart) Render(w io.Writer) {
	if len(c.series) == 0 {
		return
	}
	wd, ht := c.dims()

	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := 0.0, 0.0
	for _, s := range c.series {
		for i := range s.xs {
			if c.XLog && s.xs[i] <= 0 {
				continue
			}
			xlo = math.Min(xlo, s.xs[i])
			xhi = math.Max(xhi, s.xs[i])
			yhi = math.Max(yhi, s.ys[i])
		}
	}
	if !(xhi > xlo) {
		xhi = xlo + 1
	}
	if yhi <= ylo {
		yhi = 1
	}

	xpos := func(x float64) int {
		if c.XLog {
			return clamp(int(math.Round((math.Log(x)-math.Log(xlo))/(math.Log(xhi)-math.Log(xlo))*float64(wd-1))), 0, wd-1)
		}
		return clamp(int(math.Round((x-xlo)/(xhi-xlo)*float64(wd-1))), 0, wd-1)
	}
	ypos := func(y float64) int {
		// Row 0 is the top.
		return clamp(ht-1-int(math.Round((y-ylo)/(yhi-ylo)*float64(ht-1))), 0, ht-1)
	}

	grid := make([][]rune, ht)
	for i := range grid {
		grid[i] = make([]rune, wd)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for _, s := range c.series {
		prevX, prevY := -1, -1
		for i := range s.xs {
			if c.XLog && s.xs[i] <= 0 {
				continue
			}
			gx, gy := xpos(s.xs[i]), ypos(s.ys[i])
			grid[gy][gx] = s.mark
			// Fill vertical gaps between consecutive points so steep
			// CCDF drops read as lines, not dots.
			if prevX >= 0 && gx > prevX && gy != prevY {
				step := 1
				if gy < prevY {
					step = -1
				}
				for y := prevY + step; y != gy; y += step {
					if grid[y][prevX] == ' ' {
						grid[y][prevX] = '·'
					}
				}
			}
			prevX, prevY = gx, gy
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	for i, row := range grid {
		tick := "      "
		switch i {
		case 0:
			tick = fmtTick(yhi)
		case ht - 1:
			tick = fmtTick(ylo)
		case ht / 2:
			tick = fmtTick((yhi + ylo) / 2)
		}
		fmt.Fprintf(w, " %6s ┤%s\n", tick, string(row))
	}
	fmt.Fprintf(w, "        └%s\n", strings.Repeat("─", wd))
	fmt.Fprintf(w, "         %-*s%s\n", wd-len(fmtVal(xhi)), fmtVal(xlo), fmtVal(xhi))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(w, "         x: %s   y: %s\n", c.XLabel, c.YLabel)
	}
	for _, s := range c.series {
		fmt.Fprintf(w, "         %c %s\n", s.mark, s.name)
	}
}

func fmtVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func fmtTick(v float64) string { return fmt.Sprintf("%6s", fmtVal(v)) }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
