package viz

import (
	"strings"
	"testing"

	"mptcplab/internal/stats"
)

func TestBoxPlotRender(t *testing.T) {
	p := &BoxPlot{Title: "download time", Unit: "s", Width: 40}
	p.Add("SP-WiFi", stats.Box{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5, N: 8})
	p.Add("MP-2", stats.Box{Min: 0.5, Q1: 0.8, Median: 1, Q3: 1.4, Max: 2, N: 8})
	var sb strings.Builder
	p.Render(&sb)
	out := sb.String()
	for _, want := range []string{"download time", "SP-WiFi", "MP-2", "├", "┤", "▒", "│"} {
		if !strings.Contains(out, want) {
			t.Errorf("box plot missing %q:\n%s", want, out)
		}
	}
	// Axis endpoints appear.
	if !strings.Contains(out, "0.5s") || !strings.Contains(out, "5s") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestBoxPlotLogAxis(t *testing.T) {
	p := &BoxPlot{Unit: "s", Width: 40, Log: true}
	p.Add("fast", stats.Box{Min: 0.1, Q1: 0.2, Median: 0.3, Q3: 0.4, Max: 0.5})
	p.Add("slow", stats.Box{Min: 100, Q1: 200, Median: 300, Q3: 400, Max: 500})
	var sb strings.Builder
	p.Render(&sb)
	lines := strings.Split(sb.String(), "\n")
	// The fast row's box must sit left of the slow row's box.
	fastIdx := strings.IndexRune(lines[0], '▒')
	slowIdx := strings.IndexRune(lines[1], '▒')
	if fastIdx < 0 || slowIdx < 0 || fastIdx >= slowIdx {
		t.Errorf("log axis ordering wrong (fast at %d, slow at %d):\n%s", fastIdx, slowIdx, sb.String())
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	var sb strings.Builder
	(&BoxPlot{}).Render(&sb)
	if sb.Len() != 0 {
		t.Error("empty plot produced output")
	}
}

func TestBoxPlotDegenerateRange(t *testing.T) {
	p := &BoxPlot{Width: 20}
	p.Add("flat", stats.Box{Min: 2, Q1: 2, Median: 2, Q3: 2, Max: 2})
	var sb strings.Builder
	p.Render(&sb) // must not divide by zero or panic
	if !strings.Contains(sb.String(), "flat") {
		t.Error("degenerate box not rendered")
	}
}

func TestLineChartRender(t *testing.T) {
	c := &LineChart{Title: "CCDF", XLabel: "ms", YLabel: "P(X>x)", Width: 40, Height: 10, XLog: true}
	xs := []float64{10, 100, 1000}
	c.AddSeries("att", xs, []float64{1, 0.5, 0})
	c.AddSeries("sprint", xs, []float64{1, 0.9, 0.4})
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	for _, want := range []string{"CCDF", "att", "sprint", "●", "○", "└"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Errorf("chart only %d lines", lines)
	}
}

func TestLineChartSkipsNonPositiveXOnLogAxis(t *testing.T) {
	c := &LineChart{Width: 20, Height: 5, XLog: true}
	c.AddSeries("s", []float64{0, 10, 100}, []float64{1, 0.5, 0})
	var sb strings.Builder
	c.Render(&sb) // must not panic on log(0)
	if !strings.Contains(sb.String(), "s") {
		t.Error("series legend missing")
	}
}

func TestLineChartEmpty(t *testing.T) {
	var sb strings.Builder
	(&LineChart{}).Render(&sb)
	if sb.Len() != 0 {
		t.Error("empty chart produced output")
	}
}
