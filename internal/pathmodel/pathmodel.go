// Package pathmodel defines calibrated stochastic models of the
// paper's five access networks: Comcast home WiFi, a public coffee-shop
// WiFi hotspot, AT&T 4G LTE, Verizon 4G LTE, and Sprint 3G EVDO.
//
// Each profile reproduces the *mechanisms* behind the paper's
// measurements rather than hard-coding its numbers:
//
//   - WiFi: short propagation delay, bursty medium loss of 1-3%
//     (Gilbert-Elliott), shallow buffers — low, stable RTTs.
//   - LTE: longer base RTT, link-layer ARQ that hides radio loss
//     (<0.1% residual) at the cost of delay jitter, and deep drop-tail
//     buffers whose queueing delay ("bufferbloat") inflates RTT as the
//     congestion window grows — exactly the RTT-vs-file-size growth of
//     Tables 2/5.
//   - 3G EVDO: a slow link behind a very deep buffer plus heavy-tailed
//     scheduling stalls — the multi-second RTT tail of Figure 12.
//
// Profiles are sampled per run (rate, delay, and loss wander across
// "times of day" and "locations") so repeated measurements spread the
// way the paper's box plots do.
package pathmodel

import (
	"fmt"
	"math"

	"mptcplab/internal/netem"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
)

// Tech distinguishes the access technology class.
type Tech int

// Access technologies.
const (
	WiFi Tech = iota
	LTE
	EVDO
	NR // 5G New Radio (mmWave)
)

// String names the technology.
func (t Tech) String() string {
	switch t {
	case WiFi:
		return "WiFi"
	case LTE:
		return "4G LTE"
	case EVDO:
		return "3G EVDO"
	case NR:
		return "5G NR"
	default:
		return "unknown"
	}
}

// Profile parameterizes one access network.
type Profile struct {
	Name string
	Tech Tech

	DownRate, UpRate   units.BitRate
	OWD                sim.Time // one-way propagation delay, each direction
	DownQueue, UpQueue units.ByteCount

	// WiFi medium loss (Gilbert-Elliott); zero for cellular.
	GEDown, GEUp *netem.GilbertElliottParams

	// Cellular link-layer retransmission; nil for WiFi.
	ARQ *netem.ARQ

	// Per-packet scheduling jitter.
	DownJitter, UpJitter netem.DelayModel

	// Radio-resource state machine (cellular only).
	Promotion, DemoteAfter sim.Time

	// Spread controls per-run parameter variation (0 = none; 0.2 means
	// rates and delays wander ±20% between runs).
	Spread float64
}

// ComcastHome is the paper's default WiFi: a residential cable-backed
// 802.11a/b/g network, ~22-39 ms RTTs, 1-2% bursty loss.
func ComcastHome() Profile {
	return Profile{
		Name: "wifi", Tech: WiFi,
		DownRate: 20 * units.Mbps, UpRate: 6 * units.Mbps,
		OWD:       9 * sim.Millisecond,
		DownQueue: 96 * units.KB, UpQueue: 48 * units.KB,
		GEDown:     &netem.GilbertElliottParams{PGood: 0.008, PBad: 0.25, PGB: 0.004, PBG: 0.25},
		GEUp:       &netem.GilbertElliottParams{PGood: 0.004, PBad: 0.15, PGB: 0.002, PBG: 0.3},
		DownJitter: netem.UniformJitter{Lo: 0, Hi: 4 * sim.Millisecond},
		UpJitter:   netem.UniformJitter{Lo: 0, Hi: 3 * sim.Millisecond},
		Spread:     0.20,
	}
}

// CoffeeShop is the §4.1 public hotspot on a Friday afternoon: heavily
// shared, 3-5% loss, occasionally huge contention delays.
func CoffeeShop() Profile {
	return Profile{
		Name: "coffeeshop-wifi", Tech: WiFi,
		DownRate: 6 * units.Mbps, UpRate: 2 * units.Mbps,
		OWD:       8 * sim.Millisecond,
		DownQueue: 64 * units.KB, UpQueue: 32 * units.KB,
		GEDown:     &netem.GilbertElliottParams{PGood: 0.015, PBad: 0.35, PGB: 0.012, PBG: 0.18},
		GEUp:       &netem.GilbertElliottParams{PGood: 0.008, PBad: 0.2, PGB: 0.008, PBG: 0.2},
		DownJitter: netem.LogNormalJitter{Mu: 0.9, Sigma: 1.3, Max: 500 * sim.Millisecond},
		UpJitter:   netem.LogNormalJitter{Mu: 0.7, Sigma: 1.0, Max: 300 * sim.Millisecond},
		Spread:     0.35,
	}
}

// ATT is AT&T 4G LTE: the paper's most stable cellular network —
// ~60 ms base RTT inflating to ~140 ms on large flows, near-zero loss.
func ATT() Profile {
	return Profile{
		Name: "att", Tech: LTE,
		DownRate: 11 * units.Mbps, UpRate: 5 * units.Mbps,
		OWD:       27 * sim.Millisecond,
		DownQueue: 1 * units.MB, UpQueue: 256 * units.KB,
		ARQ:        &netem.ARQ{PLoss: 0.07, MaxRetries: 3, RetryDelay: 8 * sim.Millisecond},
		DownJitter: netem.LogNormalJitter{Mu: 1.1, Sigma: 0.8, Max: 300 * sim.Millisecond},
		UpJitter:   netem.LogNormalJitter{Mu: 0.9, Sigma: 0.7, Max: 200 * sim.Millisecond},
		Promotion:  260 * sim.Millisecond, DemoteAfter: 10 * sim.Second,
		Spread: 0.15,
	}
}

// Verizon is Verizon 4G LTE: lower minimum RTT than AT&T but a much
// deeper buffer and higher variability — RTTs reach 600+ ms on large
// flows and queue overflow produces ~1-2% loss at 16 MB (Table 2).
func Verizon() Profile {
	return Profile{
		Name: "verizon", Tech: LTE,
		DownRate: 9 * units.Mbps, UpRate: 4 * units.Mbps,
		OWD:       20 * sim.Millisecond,
		DownQueue: 768 * units.KB, UpQueue: 192 * units.KB,
		ARQ:        &netem.ARQ{PLoss: 0.12, MaxRetries: 2, RetryDelay: 10 * sim.Millisecond},
		DownJitter: netem.LogNormalJitter{Mu: 2.2, Sigma: 1.1, Max: 1200 * sim.Millisecond},
		UpJitter:   netem.LogNormalJitter{Mu: 1.6, Sigma: 0.9, Max: 600 * sim.Millisecond},
		Promotion:  300 * sim.Millisecond, DemoteAfter: 10 * sim.Second,
		Spread: 0.25,
	}
}

// Sprint is Sprint 3G EVDO: a ~1.5 Mbps link behind seconds of buffer,
// with heavy-tailed radio stalls — base RTTs of 200+ ms, inflated RTTs
// past a second, and the worst residual loss of the carriers.
func Sprint() Profile {
	return Profile{
		Name: "sprint", Tech: EVDO,
		DownRate: 1600 * units.Kbps, UpRate: 600 * units.Kbps,
		OWD:       55 * sim.Millisecond,
		DownQueue: 256 * units.KB, UpQueue: 96 * units.KB,
		ARQ: &netem.ARQ{PLoss: 0.12, MaxRetries: 1, RetryDelay: 80 * sim.Millisecond},
		DownJitter: netem.ParetoTailJitter{
			Base:  netem.UniformJitter{Lo: 5 * sim.Millisecond, Hi: 80 * sim.Millisecond},
			PTail: 0.03, Xm: 90, Alpha: 1.35, Max: 1800 * sim.Millisecond,
		},
		UpJitter: netem.ParetoTailJitter{
			Base:  netem.UniformJitter{Lo: 5 * sim.Millisecond, Hi: 60 * sim.Millisecond},
			PTail: 0.05, Xm: 60, Alpha: 1.3, Max: 3 * sim.Second,
		},
		Promotion: 2 * sim.Second, DemoteAfter: 5 * sim.Second,
		Spread: 0.30,
	}
}

// DualLTE is a second 4G carrier for the "Is Two Greater Than One?"
// dual-LTE pairing (PAPERS.md): instead of WiFi+cellular, the client
// bonds two macro-cell LTE attachments. Its character sits between
// AT&T and Verizon — similar RTT floor, deep bufferbloat-prone queue —
// but the two carriers never share a bottleneck, so path coupling
// comes only from the congestion controller. Use it in the WiFi slot
// of a two-path topology (classification there is by address, not
// technology).
func DualLTE() Profile {
	return Profile{
		Name: "dual-lte", Tech: LTE,
		DownRate: 15 * units.Mbps, UpRate: 8 * units.Mbps,
		OWD:       22 * sim.Millisecond,
		DownQueue: 1 * units.MB, UpQueue: 256 * units.KB,
		ARQ:        &netem.ARQ{PLoss: 0.08, MaxRetries: 3, RetryDelay: 7 * sim.Millisecond},
		DownJitter: netem.LogNormalJitter{Mu: 1.0, Sigma: 0.8, Max: 250 * sim.Millisecond},
		UpJitter:   netem.LogNormalJitter{Mu: 0.8, Sigma: 0.7, Max: 180 * sim.Millisecond},
		Promotion:  250 * sim.Millisecond, DemoteAfter: 10 * sim.Second,
		Spread: 0.20,
	}
}

// MmWave5G is a 5G NR mmWave attachment with blockage fades: an order
// of magnitude more capacity than LTE at a fraction of the base
// delay, but the beam is fragile — a pedestrian or a hand in the
// Fresnel zone drops the link into a deep fade for tens of packets
// (the long-dwell Gilbert-Elliott bad state) and beam re-steering
// adds heavy-tailed stalls. Pairing it with an LTE anchor
// ("lte-5g-mmwave-fade") is the modern NSA dual-connectivity
// question: can MPTCP ride the fast fragile path and fall back
// cleanly when it fades?
func MmWave5G() Profile {
	return Profile{
		Name: "5g-mmwave-fade", Tech: NR,
		DownRate: 120 * units.Mbps, UpRate: 40 * units.Mbps,
		OWD:       4 * sim.Millisecond,
		DownQueue: 2 * units.MB, UpQueue: 512 * units.KB,
		// Blockage: rare entry into a long (mean 50-packet) bad state
		// that kills half the packets — a fade, not steady loss.
		GEDown: &netem.GilbertElliottParams{PGood: 0.0005, PBad: 0.5, PGB: 0.0015, PBG: 0.02},
		GEUp:   &netem.GilbertElliottParams{PGood: 0.0005, PBad: 0.4, PGB: 0.001, PBG: 0.03},
		DownJitter: netem.ParetoTailJitter{
			Base:  netem.UniformJitter{Lo: 0, Hi: 2 * sim.Millisecond},
			PTail: 0.01, Xm: 20, Alpha: 1.4, Max: 400 * sim.Millisecond,
		},
		UpJitter: netem.ParetoTailJitter{
			Base:  netem.UniformJitter{Lo: 0, Hi: 2 * sim.Millisecond},
			PTail: 0.01, Xm: 15, Alpha: 1.4, Max: 300 * sim.Millisecond,
		},
		Promotion: 30 * sim.Millisecond, DemoteAfter: 5 * sim.Second,
		Spread: 0.30,
	}
}

// ByName looks a profile up ("wifi", "coffeeshop", "att", "verizon",
// "sprint", "dual-lte", "5g-mmwave-fade").
func ByName(name string) (Profile, error) {
	switch name {
	case "wifi", "comcast":
		return ComcastHome(), nil
	case "coffeeshop", "coffeeshop-wifi":
		return CoffeeShop(), nil
	case "att":
		return ATT(), nil
	case "verizon":
		return Verizon(), nil
	case "sprint":
		return Sprint(), nil
	case "dual-lte", "lte-b":
		return DualLTE(), nil
	case "5g-mmwave-fade", "lte-5g-mmwave-fade", "mmwave", "5g":
		return MmWave5G(), nil
	default:
		return Profile{}, fmt.Errorf("pathmodel: unknown profile %q", name)
	}
}

// Carriers lists the cellular profiles in the paper's order.
func Carriers() []Profile { return []Profile{ATT(), Verizon(), Sprint()} }

// Sample draws a per-run variant of the profile: the paper's temporal
// (time-of-day) and spatial (town/location) variation.
func (p Profile) Sample(rng *sim.RNG) Profile {
	if p.Spread <= 0 {
		return p
	}
	s := p
	scale := func(lo, hi float64) float64 { return rng.Uniform(lo, hi) }
	v := p.Spread
	s.DownRate = units.BitRate(float64(p.DownRate) * scale(1-v, 1+v))
	s.UpRate = units.BitRate(float64(p.UpRate) * scale(1-v, 1+v))
	s.OWD = sim.Time(float64(p.OWD) * scale(1-v/2, 1+v/2))
	if s.GEDown != nil {
		g := *p.GEDown
		f := scale(1-v, 1+v)
		g.PGood *= f
		g.PGB *= f
		s.GEDown = &g
	}
	if s.ARQ != nil {
		a := *p.ARQ
		a.PLoss *= scale(1-v, 1+v)
		s.ARQ = &a
	}
	return s
}

// SignalFade models a radio signal dropping into a fade and climbing
// back out: a raised-cosine dip in link capacity with a matching rise
// in loss probability. frac is the position inside the fade in [0,1]
// (0 = entering, 0.5 = deepest point, 1 = recovered); depth in [0,1]
// is how much capacity disappears at the bottom (1 = total blackout).
// It returns the factor to scale the nominal link rate by and the
// extra random-loss probability to apply at that instant. The curve is
// C¹-smooth so ramped application in small steps has no rate cliffs.
func SignalFade(frac, depth float64) (rateScale, loss float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	if depth < 0 {
		depth = 0
	}
	if depth > 1 {
		depth = 1
	}
	// Raised cosine: 0 at the edges, 1 at frac=0.5.
	dip := 0.5 * (1 - math.Cos(2*math.Pi*frac))
	rateScale = 1 - depth*dip
	// Loss grows with the square of the dip so shallow fades stay
	// nearly loss-free while deep fades approach a lossy blackout.
	loss = depth * dip * dip * 0.5
	return rateScale, loss
}

// Links materializes the profile into an uplink and downlink pair
// (plus the shared radio, for cellular) on the given simulator.
func (p Profile) Links(s *sim.Simulator, rng *sim.RNG) (up, down *netem.Link, radio *netem.Radio) {
	up = netem.NewLink(s, rng, p.Name+"-up")
	up.Rate, up.PropDelay, up.QueueLimit = p.UpRate, p.OWD, p.UpQueue
	down = netem.NewLink(s, rng, p.Name+"-down")
	down.Rate, down.PropDelay, down.QueueLimit = p.DownRate, p.OWD, p.DownQueue

	if p.GEDown != nil {
		down.Loss = p.GEDown.New()
	}
	if p.GEUp != nil {
		up.Loss = p.GEUp.New()
	}
	if p.ARQ != nil {
		d := *p.ARQ
		u := *p.ARQ
		down.ARQ = &d
		up.ARQ = &u
	}
	if p.DownJitter != nil {
		down.Jitter = p.DownJitter
	}
	if p.UpJitter != nil {
		up.Jitter = p.UpJitter
	}
	if p.Promotion > 0 {
		radio = netem.NewRadio(s, p.Promotion, p.DemoteAfter)
		up.Radio = radio
		down.Radio = radio
	}
	return up, down, radio
}
