package pathmodel

import "testing"

func TestPeriodNames(t *testing.T) {
	want := []string{"night", "morning", "afternoon", "evening"}
	for i, p := range AllPeriods {
		if p.String() != want[i] {
			t.Errorf("period %d = %q, want %q", i, p.String(), want[i])
		}
	}
	if Period(99).String() != "unknown" {
		t.Error("unknown period name")
	}
}

func TestDiurnalLoadShapes(t *testing.T) {
	home := ComcastHome()
	// Residential WiFi: evening is the worst period.
	evening := home.AtPeriod(Evening)
	night := home.AtPeriod(Night)
	if evening.DownRate >= night.DownRate {
		t.Errorf("evening rate %v not below night %v", evening.DownRate, night.DownRate)
	}
	if evening.GEDown.MeanLoss() <= night.GEDown.MeanLoss() {
		t.Errorf("evening loss %.4f not above night %.4f",
			evening.GEDown.MeanLoss(), night.GEDown.MeanLoss())
	}

	// Coffee shop: afternoon is the worst (the paper's Friday
	// afternoon measurement).
	cs := CoffeeShop()
	worst := cs.AtPeriod(Afternoon)
	for _, p := range AllPeriods {
		if p == Afternoon {
			continue
		}
		if cs.AtPeriod(p).DownRate <= worst.DownRate {
			t.Errorf("coffee shop %v rate not above afternoon", p)
		}
	}

	// Cellular ARQ load scales too, and the template is never mutated.
	att := ATT()
	base := att.ARQ.PLoss
	_ = att.AtPeriod(Evening)
	if att.ARQ.PLoss != base {
		t.Error("AtPeriod mutated the template profile")
	}
	if att.AtPeriod(Evening).ARQ.PLoss <= base {
		t.Error("evening cellular radio loss not elevated")
	}
}
