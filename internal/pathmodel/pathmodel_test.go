package pathmodel

import (
	"testing"

	"mptcplab/internal/netem"
	"mptcplab/internal/sim"
)

func TestByName(t *testing.T) {
	for _, name := range []string{
		"wifi", "comcast", "coffeeshop", "att", "verizon", "sprint",
		"dual-lte", "lte-b", "5g-mmwave-fade", "lte-5g-mmwave-fade", "mmwave",
	} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("tmobile"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestModernProfilesCharacterization(t *testing.T) {
	lte2, mm := DualLTE(), MmWave5G()
	att := ATT()

	// The second LTE carrier behaves like a 4G macro cell: ARQ-backed
	// (near-zero residual loss), promoted radio, LTE-class base delay.
	if lte2.Tech != LTE || lte2.ARQ == nil || lte2.Promotion == 0 {
		t.Error("dual-lte is not an LTE-class carrier")
	}
	if lte2.GEDown != nil {
		t.Error("dual-lte should hide radio loss behind ARQ, not expose medium loss")
	}
	if lte2.OWD < 15*sim.Millisecond || lte2.OWD > 40*sim.Millisecond {
		t.Errorf("dual-lte OWD %v outside the LTE band", lte2.OWD)
	}

	// mmWave: much faster and lower-latency than any LTE carrier, but
	// fade-prone — a Gilbert-Elliott bad state with a long dwell.
	if mm.Tech != NR {
		t.Error("5g-mmwave-fade should be NR tech")
	}
	if mm.DownRate < 5*att.DownRate {
		t.Errorf("mmWave down rate %v not an order beyond LTE %v", mm.DownRate, att.DownRate)
	}
	if mm.OWD >= att.OWD {
		t.Errorf("mmWave OWD %v not below LTE %v", mm.OWD, att.OWD)
	}
	if mm.GEDown == nil {
		t.Fatal("mmWave lacks the blockage-fade loss model")
	}
	if dwell := 1 / mm.GEDown.PBG; dwell < 20 {
		t.Errorf("mmWave fade dwell %.0f packets too short to be a blockage", dwell)
	}
	if mm.GEDown.PBad < 0.3 {
		t.Errorf("mmWave fade loss %.2f too mild", mm.GEDown.PBad)
	}
	if NR.String() == "unknown" {
		t.Error("NR tech unnamed")
	}
}

func TestCarrierClassesMatchPaperCharacterization(t *testing.T) {
	// §2.1: cellular paths have larger base RTTs than WiFi; 3G is the
	// slowest and highest-latency; WiFi is the lossy one.
	wifi := ComcastHome()
	att, vz, sprint := ATT(), Verizon(), Sprint()

	for _, c := range []Profile{att, vz, sprint} {
		if c.OWD <= wifi.OWD {
			t.Errorf("%s OWD %v not above WiFi %v", c.Name, c.OWD, wifi.OWD)
		}
		if c.GEDown != nil {
			t.Errorf("%s has WiFi-style medium loss", c.Name)
		}
		if c.ARQ == nil {
			t.Errorf("%s lacks link-layer ARQ", c.Name)
		}
		if c.Promotion == 0 {
			t.Errorf("%s lacks a radio promotion delay", c.Name)
		}
	}
	if wifi.GEDown == nil {
		t.Error("WiFi lacks medium loss")
	}
	if wifi.GEDown.MeanLoss() < 0.005 || wifi.GEDown.MeanLoss() > 0.04 {
		t.Errorf("WiFi stationary loss %.4f outside the paper's 1-3%% band", wifi.GEDown.MeanLoss())
	}
	if sprint.DownRate >= att.DownRate || sprint.DownRate >= vz.DownRate {
		t.Error("3G EVDO should be the slowest carrier")
	}
	cs := CoffeeShop()
	if cs.GEDown.MeanLoss() <= wifi.GEDown.MeanLoss() {
		t.Error("coffee-shop WiFi should be lossier than home WiFi")
	}
	if len(Carriers()) != 3 {
		t.Error("Carriers() should list AT&T, Verizon, Sprint")
	}
}

func TestBufferbloatDepthOrdering(t *testing.T) {
	// Maximum queueing delay (queue/rate) must dwarf the base RTT on
	// cellular paths — the §5.1 bufferbloat premise — and stay modest
	// on WiFi.
	queueDelay := func(p Profile) sim.Time {
		return p.DownRate.TransmitTime(p.DownQueue)
	}
	wifi, att, sprint := ComcastHome(), ATT(), Sprint()
	if queueDelay(wifi) > 100*sim.Millisecond {
		t.Errorf("WiFi max queue delay %v too bloated", queueDelay(wifi))
	}
	if queueDelay(att) < 300*sim.Millisecond {
		t.Errorf("AT&T max queue delay %v too shallow for bufferbloat", queueDelay(att))
	}
	if queueDelay(sprint) < sim.Second {
		t.Errorf("Sprint max queue delay %v; paper saw multi-second RTTs", queueDelay(sprint))
	}
}

func TestSampleStaysWithinSpread(t *testing.T) {
	p := ATT()
	rng := sim.NewRNG(3)
	for i := 0; i < 200; i++ {
		s := p.Sample(rng)
		lo := float64(p.DownRate) * (1 - p.Spread)
		hi := float64(p.DownRate) * (1 + p.Spread)
		if float64(s.DownRate) < lo-1 || float64(s.DownRate) > hi+1 {
			t.Fatalf("sampled rate %v outside ±%.0f%%", s.DownRate, p.Spread*100)
		}
		if s.ARQ == p.ARQ {
			t.Fatal("Sample aliases the template ARQ")
		}
	}
	// Zero spread: identity.
	p.Spread = 0
	s := p.Sample(rng)
	if s.DownRate != p.DownRate {
		t.Error("zero-spread sample changed the profile")
	}
}

func TestLinksMaterialization(t *testing.T) {
	s := sim.New()
	rng := sim.NewRNG(1)

	up, down, radio := ATT().Links(s, rng)
	if radio == nil {
		t.Fatal("cellular profile produced no radio")
	}
	if up.Radio != radio || down.Radio != radio {
		t.Error("uplink and downlink must share the antenna")
	}
	if up.ARQ == down.ARQ {
		t.Error("up/down ARQ must be independent instances")
	}
	if down.Rate != ATT().DownRate {
		t.Errorf("down rate %v", down.Rate)
	}

	wUp, wDown, wRadio := ComcastHome().Links(s, rng)
	if wRadio != nil {
		t.Error("WiFi has no cellular radio")
	}
	if wUp.Loss == nil || wDown.Loss == nil {
		t.Error("WiFi links lack loss processes")
	}
	if _, ok := wDown.Loss.(*netem.GilbertElliott); !ok {
		t.Errorf("WiFi downlink loss is %T, want Gilbert-Elliott", wDown.Loss)
	}
}

func TestSignalFadeCurve(t *testing.T) {
	// Edges: no fade applied entering or leaving.
	for _, frac := range []float64{0, 1} {
		rs, loss := SignalFade(frac, 0.9)
		if rs < 0.999 || loss > 0.001 {
			t.Fatalf("frac=%v: rateScale=%v loss=%v, want ~1 and ~0", frac, rs, loss)
		}
	}
	// Deepest point: rate scaled by exactly 1-depth.
	rs, loss := SignalFade(0.5, 0.8)
	if rs < 0.199 || rs > 0.201 {
		t.Fatalf("rateScale at bottom = %v, want 0.2", rs)
	}
	if loss <= 0 || loss > 0.5 {
		t.Fatalf("loss at bottom = %v, want (0, 0.5]", loss)
	}
	// Monotone into the dip, symmetric out of it.
	prev := 1.0
	for f := 0.0; f <= 0.5; f += 0.05 {
		r, _ := SignalFade(f, 0.95)
		if r > prev+1e-12 {
			t.Fatalf("rateScale not monotone into fade at frac=%v", f)
		}
		r2, _ := SignalFade(1-f, 0.95)
		if r2 < r-1e-9 || r2 > r+1e-9 {
			t.Fatalf("fade not symmetric: frac=%v -> %v, frac=%v -> %v", f, r, 1-f, r2)
		}
		prev = r
	}
	// Out-of-range inputs clamp instead of exploding.
	if rs, _ := SignalFade(-3, 2); rs < 0 || rs > 1 {
		t.Fatalf("clamped SignalFade out of range: %v", rs)
	}
}
