package pathmodel

import "mptcplab/internal/units"

// Period is one of the paper's four measurement windows (§3.2): night
// (0-6), morning (6-12), afternoon (12-18), evening (18-24). Network
// load is diurnal — a residential cable segment is busiest in the
// evening, a coffee-shop hotspot in the afternoon — and the paper
// measures 20 downloads per period to capture it.
type Period int

// The four periods.
const (
	Night Period = iota
	Morning
	Afternoon
	Evening
)

// AllPeriods lists the periods in day order.
var AllPeriods = []Period{Night, Morning, Afternoon, Evening}

// String names the period.
func (p Period) String() string {
	switch p {
	case Night:
		return "night"
	case Morning:
		return "morning"
	case Afternoon:
		return "afternoon"
	case Evening:
		return "evening"
	default:
		return "unknown"
	}
}

// periodLoad describes how a period scales a profile: a rate factor
// (shared capacity under contention) and a loss factor (collisions).
type periodLoad struct {
	rate, loss float64
}

// loadFor returns the diurnal multipliers for a profile class.
func loadFor(tech Tech, name string, p Period) periodLoad {
	if name == "coffeeshop-wifi" {
		// Hotspot: dead at night, slammed in the afternoon (the
		// paper's §4.1 measurements were a Friday afternoon).
		switch p {
		case Night:
			return periodLoad{1.25, 0.6}
		case Morning:
			return periodLoad{1.0, 1.0}
		case Afternoon:
			return periodLoad{0.6, 1.5}
		default:
			return periodLoad{0.8, 1.2}
		}
	}
	switch tech {
	case WiFi:
		// Residential cable: evening streaming hour.
		switch p {
		case Night:
			return periodLoad{1.15, 0.8}
		case Morning:
			return periodLoad{1.05, 0.9}
		case Afternoon:
			return periodLoad{0.95, 1.1}
		default:
			return periodLoad{0.75, 1.35}
		}
	default:
		// Cellular: flatter, mild evening dip.
		switch p {
		case Night:
			return periodLoad{1.1, 0.9}
		case Morning:
			return periodLoad{1.0, 1.0}
		case Afternoon:
			return periodLoad{0.95, 1.05}
		default:
			return periodLoad{0.85, 1.15}
		}
	}
}

// AtPeriod returns the profile as it behaves during the given period.
// Apply before Sample: the per-run Spread then models within-period
// variation around the period's load level.
func (p Profile) AtPeriod(period Period) Profile {
	l := loadFor(p.Tech, p.Name, period)
	s := p
	s.DownRate = scaleRate(p.DownRate, l.rate)
	s.UpRate = scaleRate(p.UpRate, l.rate)
	if p.GEDown != nil {
		g := *p.GEDown
		g.PGood *= l.loss
		g.PGB *= l.loss
		s.GEDown = &g
	}
	if p.GEUp != nil {
		g := *p.GEUp
		g.PGood *= l.loss
		g.PGB *= l.loss
		s.GEUp = &g
	}
	if p.ARQ != nil {
		a := *p.ARQ
		a.PLoss *= l.loss
		s.ARQ = &a
	}
	return s
}

func scaleRate(r units.BitRate, f float64) units.BitRate {
	return units.BitRate(float64(r) * f)
}
