// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls
// out and micro-benchmarks of the core data structures.
//
// Each experiment benchmark runs a scaled-down campaign (fewer
// repetitions than the paper's 20-per-period) and reports the series
// the corresponding figure plots via b.ReportMetric, so
//
//	go test -bench=Fig9 -benchtime=1x
//
// prints the regenerated rows. cmd/paperbench renders the same
// campaigns as full text tables.
package mptcplab_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mptcplab/internal/experiment"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/pcap"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/stats"
	"mptcplab/internal/units"
	"mptcplab/internal/web"
)

const benchReps = 3

// Workers: 0 fans each campaign out to all CPUs; the runner guarantees
// aggregates are byte-identical to a serial run, so reported metrics
// are unaffected.
var benchOpts = experiment.CampaignOpts{Reps: benchReps, Seed: 1, SampleProfiles: true, Workers: 0}

// Campaigns are deterministic; share them across the benchmarks that
// read different projections of the same matrix (e.g. Fig 2/3 and
// Table 2 all come from the baseline campaign).
var (
	campaignMu    sync.Mutex
	campaignCache = map[string]*experiment.Matrix{}
)

func campaign(name string, run func() *experiment.Matrix) *experiment.Matrix {
	campaignMu.Lock()
	defer campaignMu.Unlock()
	if m, ok := campaignCache[name]; ok {
		return m
	}
	m := run()
	campaignCache[name] = m
	return m
}

// reportTimes emits each row's median download time for every size.
func reportTimes(b *testing.B, m *experiment.Matrix) {
	b.Helper()
	for _, row := range m.Rows {
		for i, size := range m.Sizes {
			c := row.Cells[i]
			b.ReportMetric(c.Times.Median(), fmt.Sprintf("s_median/%s/%v", slug(row.Label), size))
		}
	}
}

// reportShare emits each MPTCP row's mean cellular share.
func reportShare(b *testing.B, m *experiment.Matrix) {
	b.Helper()
	for _, row := range m.Rows {
		for i, size := range m.Sizes {
			c := row.Cells[i]
			if c.Share.N() > 0 && c.Config.Transport != experiment.SPWiFi && c.Config.Transport != experiment.SPCell {
				b.ReportMetric(c.Share.Mean(), fmt.Sprintf("cellshare/%s/%v", slug(row.Label), size))
			}
		}
	}
}

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}

// --- Figures 2 & 3, Table 2: baseline across carriers ---

func BenchmarkFig2BaselineDownloadTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("baseline", func() *experiment.Matrix { return experiment.Baseline(benchOpts) })
		reportTimes(b, m)
	}
}

func BenchmarkFig3BaselineCellShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("baseline", func() *experiment.Matrix { return experiment.Baseline(benchOpts) })
		reportShare(b, m)
	}
}

func BenchmarkTable2BaselinePathCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("baseline", func() *experiment.Matrix { return experiment.Baseline(benchOpts) })
		for _, label := range []string{"SP-att", "SP-verizon", "SP-sprint", "SP-WiFi"} {
			row := m.Row(label)
			if row == nil {
				continue
			}
			for j, size := range m.Sizes {
				c := row.Cells[j]
				loss, rtt := c.CellLoss, c.CellRTT
				if label == "SP-WiFi" {
					loss, rtt = c.WiFiLoss, c.WiFiRTT
				}
				b.ReportMetric(loss.Mean(), fmt.Sprintf("losspct/%s/%v", slug(label), size))
				b.ReportMetric(rtt.Mean(), fmt.Sprintf("rtt_ms/%s/%v", slug(label), size))
			}
		}
	}
}

// --- Figures 4 & 5, Table 3: small flows ---

func BenchmarkFig4SmallFlowDownloadTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("small", func() *experiment.Matrix { return experiment.SmallFlows(benchOpts) })
		reportTimes(b, m)
	}
}

func BenchmarkFig5SmallFlowCellShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("small", func() *experiment.Matrix { return experiment.SmallFlows(benchOpts) })
		reportShare(b, m)
	}
}

func BenchmarkTable3SmallFlowPathCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("small", func() *experiment.Matrix { return experiment.SmallFlows(benchOpts) })
		for j, size := range m.Sizes {
			wifi := m.Row("SP-WiFi").Cells[j]
			att := m.Row("SP-ATT").Cells[j]
			b.ReportMetric(wifi.WiFiLoss.Mean(), fmt.Sprintf("losspct/wifi/%v", size))
			b.ReportMetric(wifi.WiFiRTT.Mean(), fmt.Sprintf("rtt_ms/wifi/%v", size))
			b.ReportMetric(att.CellLoss.Mean(), fmt.Sprintf("losspct/att/%v", size))
			b.ReportMetric(att.CellRTT.Mean(), fmt.Sprintf("rtt_ms/att/%v", size))
		}
	}
}

// --- Figures 6 & 7, Table 4: coffee-shop hotspot ---

func BenchmarkFig6CoffeeShopDownloadTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("coffee", func() *experiment.Matrix { return experiment.CoffeeShop(benchOpts) })
		reportTimes(b, m)
	}
}

func BenchmarkFig7CoffeeShopCellShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("coffee", func() *experiment.Matrix { return experiment.CoffeeShop(benchOpts) })
		reportShare(b, m)
	}
}

func BenchmarkTable4CoffeeShopPathCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("coffee", func() *experiment.Matrix { return experiment.CoffeeShop(benchOpts) })
		for j, size := range m.Sizes {
			wifi := m.Row("SP-WiFi").Cells[j]
			b.ReportMetric(wifi.WiFiLoss.Mean(), fmt.Sprintf("losspct/publicwifi/%v", size))
			b.ReportMetric(wifi.WiFiRTT.Mean(), fmt.Sprintf("rtt_ms/publicwifi/%v", size))
		}
	}
}

// --- Figure 8: simultaneous vs delayed SYN ---

func BenchmarkFig8SimultaneousSYN(b *testing.B) {
	opts := benchOpts
	opts.Reps = 8 // the effect is ~10%; needs more samples
	for i := 0; i < b.N; i++ {
		m := campaign("simsyn", func() *experiment.Matrix { return experiment.SimultaneousSYN(opts) })
		reportTimes(b, m)
		// Report the headline: relative improvement at each size.
		for j, size := range m.Sizes {
			d := m.Rows[0].Cells[j].Times.Median()
			s := m.Rows[1].Cells[j].Times.Median()
			if d > 0 {
				b.ReportMetric((d-s)/d*100, fmt.Sprintf("improvement_pct/%v", size))
			}
		}
	}
}

// --- Figures 9 & 10, Table 5: large flows ---

func BenchmarkFig9LargeFlowDownloadTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("large", func() *experiment.Matrix { return experiment.LargeFlows(benchOpts) })
		reportTimes(b, m)
	}
}

func BenchmarkFig10LargeFlowCellShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("large", func() *experiment.Matrix { return experiment.LargeFlows(benchOpts) })
		reportShare(b, m)
	}
}

func BenchmarkTable5LargeFlowPathCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("large", func() *experiment.Matrix { return experiment.LargeFlows(benchOpts) })
		for j, size := range m.Sizes {
			wifi := m.Row("SP-WiFi").Cells[j]
			att := m.Row("SP-ATT").Cells[j]
			b.ReportMetric(wifi.WiFiLoss.Mean(), fmt.Sprintf("losspct/wifi/%v", size))
			b.ReportMetric(att.CellRTT.Mean(), fmt.Sprintf("rtt_ms/att/%v", size))
		}
	}
}

// --- Figure 11: infinite backlog ---

func BenchmarkFig11InfiniteBacklog(b *testing.B) {
	opts := benchOpts
	opts.Reps = 2
	// 128 MB approximates the paper's 512 MB "infinite backlog" at a
	// quarter of the simulation cost; slow-start effects are equally
	// negligible at this scale.
	size := units.ByteCount(128 * units.MB)
	for i := 0; i < b.N; i++ {
		m := campaign("backlog", func() *experiment.Matrix { return experiment.Backlog(size, opts) })
		reportTimes(b, m)
	}
}

// --- Figures 12 & 13, Table 6: latency distributions ---

func BenchmarkFig12RTTCCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("latency", func() *experiment.Matrix { return experiment.LatencyDistribution(benchOpts) })
		for _, row := range m.Rows {
			for j, size := range m.Sizes {
				c := row.Cells[j]
				for _, p := range []float64{0.5, 0.9, 0.99} {
					b.ReportMetric(c.CellRTT.Quantile(p), fmt.Sprintf("rtt_ms_p%.0f/%s/%v", p*100, slug(row.Label), size))
				}
			}
		}
	}
}

func BenchmarkFig13OFOCCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("latency", func() *experiment.Matrix { return experiment.LatencyDistribution(benchOpts) })
		for _, row := range m.Rows {
			for j, size := range m.Sizes {
				c := row.Cells[j]
				b.ReportMetric(1-c.OFO.FractionAbove(0), fmt.Sprintf("inorder_frac/%s/%v", slug(row.Label), size))
				b.ReportMetric(c.OFO.FractionAbove(150), fmt.Sprintf("ofo_gt150ms_frac/%s/%v", slug(row.Label), size))
			}
		}
	}
}

func BenchmarkTable6MPTCPLatencyStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := campaign("latency", func() *experiment.Matrix { return experiment.LatencyDistribution(benchOpts) })
		for _, row := range m.Rows {
			for j, size := range m.Sizes {
				c := row.Cells[j]
				b.ReportMetric(c.CellRTT.Mean(), fmt.Sprintf("rtt_ms/%s/%v", slug(row.Label), size))
				b.ReportMetric(c.OFO.Mean(), fmt.Sprintf("ofo_ms/%s/%v", slug(row.Label), size))
			}
		}
	}
}

// --- Table 7: video streaming workloads ---

func BenchmarkTable7VideoStreaming(b *testing.B) {
	type profile struct {
		name     string
		prefetch units.ByteCount
		block    units.ByteCount
		period   sim.Time
		blocks   int
	}
	profiles := []profile{
		{"netflix-android", 40 * units.MB, 5 * units.MB, 72 * sim.Second, 4},
		{"netflix-ipad", 15 * units.MB, 1843 * units.KB, 10 * sim.Second, 8},
	}
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			tb := experiment.NewTestbed(experiment.TestbedConfig{
				WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
				SampleProfiles: true, WarmRadio: true, Seed: int64(i) + 9,
			})
			cfg := mptcp.DefaultConfig()
			fs := &web.FileServer{CloseAfter: -1, SizeFor: func(r int) int {
				if r == 0 {
					return int(p.prefetch)
				}
				return int(p.block)
			}}
			srv := mptcp.NewServer(tb.Server, tb.Net, experiment.ServerPort, cfg, tb.RNG.Child("srv"))
			srv.OnConn = func(c *mptcp.Conn) { fs.ServeStream(web.MPTCPStream{Conn: c}) }
			conn := mptcp.Dial(tb.Net, tb.Client, mptcp.DialOpts{
				LocalAddrs: []seg.Addr{tb.WiFiAddr, tb.CellAddr},
				ServerAddr: tb.SrvAddr,
				Config:     cfg,
			}, tb.RNG.Child("cli"))
			g := web.NewGetter(web.MPTCPStream{Conn: conn})

			blockTimes := stats.New()
			var prefetchSec float64
			start := tb.Sim.Now()
			var fetch func(k int)
			fetch = func(k int) {
				issued := tb.Sim.Now()
				g.Get(int(p.block), func() {
					blockTimes.Add((tb.Sim.Now() - issued).Seconds())
					if k+1 < p.blocks {
						wait := p.period - (tb.Sim.Now() - issued)
						if wait < 0 {
							wait = 0
						}
						tb.Sim.After(wait, "block", func() { fetch(k + 1) })
					} else {
						tb.Sim.Stop()
					}
				})
			}
			g.Get(int(p.prefetch), func() {
				prefetchSec = (tb.Sim.Now() - start).Seconds()
				fetch(0)
			})
			tb.Sim.RunUntil(30 * sim.Minute)

			b.ReportMetric(prefetchSec, "prefetch_s/"+p.name)
			b.ReportMetric(blockTimes.Mean(), "block_s/"+p.name)
			b.ReportMetric(blockTimes.FractionAbove(p.period.Seconds()), "stall_frac/"+p.name)
		}
	}
}

// --- Ablations of DESIGN.md's design choices ---

// Scheduler: lowest-RTT (v0.86 default) vs round-robin. Round-robin
// ignores path quality and should inflate out-of-order delay.
func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sched := range []string{"lowest-rtt", "round-robin"} {
			ofo := stats.New()
			times := stats.New()
			for rep := 0; rep < benchReps; rep++ {
				tb := experiment.NewTestbed(experiment.TestbedConfig{
					WiFi: pathmodel.ComcastHome(), Cell: pathmodel.Sprint(),
					SampleProfiles: true, WarmRadio: true, Seed: int64(rep)*31 + 5,
				})
				res := tb.Run(experiment.RunConfig{Transport: experiment.MP2, Scheduler: sched, Size: 4 * units.MB})
				if res.Completed {
					times.Add(res.DownloadTime.Seconds())
					ofo.AddAll(res.OFOms)
				}
			}
			b.ReportMetric(times.Median(), "s_median/"+sched)
			b.ReportMetric(ofo.Mean(), "ofo_ms/"+sched)
		}
	}
}

// Penalization: the v0.86 receive-buffer penalization the paper
// removed (§3.1) — with an ample buffer it should only hurt.
func BenchmarkAblationPenalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pen := range []bool{false, true} {
			times := stats.New()
			for rep := 0; rep < benchReps; rep++ {
				tb := experiment.NewTestbed(experiment.TestbedConfig{
					WiFi: pathmodel.ComcastHome(), Cell: pathmodel.Sprint(),
					SampleProfiles: true, WarmRadio: true, Seed: int64(rep)*17 + 3,
				})
				res := tb.Run(experiment.RunConfig{
					Transport: experiment.MP2, Size: 8 * units.MB,
					Penalize: pen,
					RcvBuf:   256 * units.KB, // pressure makes the heuristic fire
				})
				if res.Completed {
					times.Add(res.DownloadTime.Seconds())
				}
			}
			name := "off"
			if pen {
				name = "on"
			}
			b.ReportMetric(times.Median(), "s_median/penalize_"+name)
		}
	}
}

// ssthresh: the paper's 64 KB initial threshold vs the Linux default
// of infinity, which lets the loss-free cellular path blow up its
// window and its RTT (§3.1).
func BenchmarkAblationSsthresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, inf := range []bool{false, true} {
			rtt := stats.New()
			for rep := 0; rep < benchReps; rep++ {
				tb := experiment.NewTestbed(experiment.TestbedConfig{
					WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
					SampleProfiles: true, WarmRadio: true, Seed: int64(rep)*13 + 7,
				})
				res := tb.Run(experiment.RunConfig{Transport: experiment.SPCell, Size: 8 * units.MB, InfiniteSSThresh: inf})
				if res.Completed {
					rtt.AddAll(res.CellRTTms)
				}
			}
			name := "64KB"
			if inf {
				name = "infinite"
			}
			b.ReportMetric(rtt.Quantile(0.95), "cellrtt_p95_ms/ssthresh_"+name)
		}
	}
}

// Receive buffer: the paper's 8 MB vs an under-provisioned buffer that
// stalls the fast path while reordering drains (§3.1).
func BenchmarkAblationReceiveBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, buf := range []units.ByteCount{8 * units.MB, 64 * units.KB} {
			times := stats.New()
			for rep := 0; rep < benchReps; rep++ {
				tb := experiment.NewTestbed(experiment.TestbedConfig{
					WiFi: pathmodel.ComcastHome(), Cell: pathmodel.Sprint(),
					SampleProfiles: true, WarmRadio: true, Seed: int64(rep)*11 + 1,
				})
				res := tb.Run(experiment.RunConfig{Transport: experiment.MP2, Size: 4 * units.MB, RcvBuf: buf})
				if res.Completed {
					times.Add(res.DownloadTime.Seconds())
				}
			}
			b.ReportMetric(times.Median(), fmt.Sprintf("s_median/rcvbuf_%v", buf))
		}
	}
}

// Radio state: the paper pre-warms the antenna with pings; a cold
// radio adds the promotion delay to the join.
func BenchmarkAblationColdRadio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, warm := range []bool{true, false} {
			times := stats.New()
			for rep := 0; rep < benchReps; rep++ {
				tb := experiment.NewTestbed(experiment.TestbedConfig{
					WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
					SampleProfiles: true, WarmRadio: warm, Seed: int64(rep)*7 + 2,
				})
				res := tb.Run(experiment.RunConfig{Transport: experiment.SPCell, Size: 64 * units.KB})
				if res.Completed {
					times.Add(res.DownloadTime.Seconds())
				}
			}
			name := "warm"
			if !warm {
				name = "cold"
			}
			b.ReportMetric(times.Median(), "s_median/radio_"+name)
		}
	}
}

// --- Campaign runner worker scaling ---

// BenchmarkCampaignWorkerScaling measures the wall-clock effect of the
// parallel campaign runner on a fixed campaign: the serial path versus
// the all-CPU pool. The resulting matrices are byte-identical (see
// TestMatrixParallelDeterminism); only elapsed time differs.
func BenchmarkCampaignWorkerScaling(b *testing.B) {
	counts := []int{1, runtime.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts[1] = 2 // still exercise the pool path on single-CPU hosts
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := experiment.CampaignOpts{Reps: 2, Seed: 1, SampleProfiles: true, Workers: workers}
				m := experiment.SimultaneousSYN(opts)
				b.ReportMetric(m.BusyTime.Seconds()/m.WallTime.Seconds(), "speedup")
			}
		})
	}
}

// --- Micro-benchmarks of the core machinery ---

func BenchmarkSimEventLoop(b *testing.B) {
	s := sim.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(sim.Microsecond, "e", func() {})
		s.Step()
	}
}

func BenchmarkSegEncodeDecode(b *testing.B) {
	s := &seg.Segment{
		Src: seg.MakeAddr("10.0.0.2", 40000), Dst: seg.MakeAddr("192.168.1.1", 8080),
		Seq: 12345, Ack: 67890, Flags: seg.ACK, Window: 31000, PayloadLen: 1460,
		Options: []seg.Option{seg.DSSOption{HasMap: true, HasAck: true, DataSeq: 1 << 33, Length: 1460}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire := seg.Encode(s)
		if _, err := seg.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReorderBufferInorder(b *testing.B) {
	rb := mptcp.NewReorderBuffer(0)
	b.ReportAllocs()
	var at uint64
	for i := 0; i < b.N; i++ {
		rb.Insert(sim.Time(i), at, at+1460, 0)
		at += 1460
	}
}

func BenchmarkReorderBufferInterleaved(b *testing.B) {
	rb := mptcp.NewReorderBuffer(0)
	b.ReportAllocs()
	var at uint64
	for i := 0; i < b.N; i++ {
		// Alternate: skip one segment ahead, then heal the hole.
		rb.Insert(sim.Time(i), at+1460, at+2920, 1)
		rb.Insert(sim.Time(i), at, at+1460, 0)
		at += 2920
	}
}

func BenchmarkPcapWrite(b *testing.B) {
	s := &seg.Segment{
		Src: seg.MakeAddr("10.0.0.2", 40000), Dst: seg.MakeAddr("192.168.1.1", 8080),
		Flags: seg.ACK, PayloadLen: 1460,
	}
	wire := seg.Encode(s)
	w, err := pcap.NewWriter(discard{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		_ = w.WritePacket(pcap.Packet{TS: int64(i), Data: wire})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkSingleDownload measures simulator throughput end to end:
// one complete 4 MB 2-path MPTCP download per iteration.
func BenchmarkSingleDownload4MB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := experiment.NewTestbed(experiment.TestbedConfig{
			WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
			SampleProfiles: true, WarmRadio: true, Seed: int64(i),
		})
		res := tb.Run(experiment.RunConfig{Transport: experiment.MP2, Size: 4 * units.MB})
		if !res.Completed {
			b.Fatal("download failed")
		}
	}
}

// BenchmarkTCPThroughput exercises the plain TCP fast path.
func BenchmarkTCPSingle4MB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := experiment.NewTestbed(experiment.TestbedConfig{
			WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
			SampleProfiles: true, WarmRadio: true, Seed: int64(i),
		})
		res := tb.Run(experiment.RunConfig{Transport: experiment.SPWiFi, Size: 4 * units.MB})
		if !res.Completed {
			b.Fatal("download failed")
		}
	}
}

// --- Extension: mobility/outage sweep (beyond the paper's §6 text) ---

func BenchmarkMobilityOutageSweep(b *testing.B) {
	opts := benchOpts
	for i := 0; i < b.N; i++ {
		m := campaign("mobility", func() *experiment.Matrix { return experiment.Mobility(opts) })
		for _, row := range m.Rows {
			for j, d := range m.Sizes {
				c := row.Cells[j]
				b.ReportMetric(c.Times.Median(), fmt.Sprintf("s_median/%s/outage_%ds", slug(row.Label), int64(d)))
				if c.Failures > 0 {
					b.ReportMetric(float64(c.Failures), fmt.Sprintf("failures/%s/outage_%ds", slug(row.Label), int64(d)))
				}
			}
		}
	}
}

// --- Extension: §3.2's four time-of-day periods ---

// BenchmarkTimeOfDayVariation measures the same 2 MB download in each
// of the paper's four measurement windows: residential WiFi degrades
// in the evening, so SP-WiFi slows while MPTCP leans harder on
// cellular and stays flat — the robustness the paper attributes to
// MPTCP across its 24-hour campaigns.
func BenchmarkTimeOfDayVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, period := range pathmodel.AllPeriods {
			for _, tr := range []experiment.Transport{experiment.SPWiFi, experiment.MP2} {
				times := stats.New()
				share := stats.New()
				for rep := 0; rep < benchReps; rep++ {
					tb := experiment.NewTestbed(experiment.TestbedConfig{
						WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
						SampleProfiles: true, WarmRadio: true,
						UsePeriod: true, Period: period,
						Seed: int64(rep)*53 + 11,
					})
					res := tb.Run(experiment.RunConfig{Transport: tr, Size: 2 * units.MB})
					if res.Completed {
						times.Add(res.DownloadTime.Seconds())
						share.Add(res.CellShare())
					}
				}
				b.ReportMetric(times.Median(), fmt.Sprintf("s_median/%v/%v", tr, period))
				if tr == experiment.MP2 {
					b.ReportMetric(share.Mean(), fmt.Sprintf("cellshare/%v", period))
				}
			}
		}
	}
}

// --- Allocation gates for the pooled hot path ---
//
// These are Tests, not Benchmarks, so every CI test run enforces them:
// a change that reintroduces per-event or per-packet allocation fails
// here rather than silently regressing the numbers in EXPERIMENTS.md.

// TestSimEventLoopAllocFree pins the schedule+dispatch cycle at zero
// allocations: events come from the simulator's free list and handles
// are plain values.
func TestSimEventLoopAllocFree(t *testing.T) {
	s := sim.New()
	fn := func() {}
	if a := testing.AllocsPerRun(10000, func() {
		s.After(sim.Microsecond, "e", fn)
		s.Step()
	}); a != 0 {
		t.Errorf("sim schedule+step allocates %v objects per event, want 0", a)
	}
}

// TestSegAppendEncodeAllocFree pins wire encoding into a reused
// scratch buffer (the pcap tap's steady state) at zero allocations.
func TestSegAppendEncodeAllocFree(t *testing.T) {
	s := &seg.Segment{
		Src: seg.MakeAddr("10.0.0.2", 40000), Dst: seg.MakeAddr("192.168.1.1", 8080),
		Seq: 12345, Ack: 67890, Flags: seg.ACK, Window: 31000, PayloadLen: 1460,
	}
	s.AddDSS(seg.DSSOption{HasMap: true, HasAck: true, DataSeq: 1 << 33, Length: 1460})
	scratch := seg.AppendEncode(nil, s) // size the buffer once
	if a := testing.AllocsPerRun(1000, func() {
		scratch = seg.AppendEncode(scratch[:0], s)
	}); a != 0 {
		t.Errorf("AppendEncode into sized scratch allocates %v objects per frame, want 0", a)
	}
}

// TestSegEncodeDecodeAllocBudget bounds the full encode+decode round
// trip (used off the hot path, by trace analysis) so it cannot creep
// back toward the pre-pooling 8 allocs per frame.
func TestSegEncodeDecodeAllocBudget(t *testing.T) {
	s := &seg.Segment{
		Src: seg.MakeAddr("10.0.0.2", 40000), Dst: seg.MakeAddr("192.168.1.1", 8080),
		Seq: 12345, Ack: 67890, Flags: seg.ACK, Window: 31000, PayloadLen: 1460,
		Options: []seg.Option{seg.DSSOption{HasMap: true, HasAck: true, DataSeq: 1 << 33, Length: 1460}},
	}
	if a := testing.AllocsPerRun(1000, func() {
		wire := seg.Encode(s)
		if _, err := seg.Decode(wire); err != nil {
			t.Fatal(err)
		}
	}); a > 4 {
		t.Errorf("Encode+Decode allocates %v objects per frame, want <= 4", a)
	}
}

// TestReorderBufferAllocFree pins the out-of-order insert/heal cycle
// at zero steady-state allocations (reused scratch + in-place splice).
func TestReorderBufferAllocFree(t *testing.T) {
	rb := mptcp.NewReorderBuffer(0)
	var at uint64
	// Warm up: let blocks/scratch grow to working size.
	for i := 0; i < 64; i++ {
		rb.Insert(sim.Time(i), at+1460, at+2920, 1)
		rb.Insert(sim.Time(i), at, at+1460, 0)
		at += 2920
	}
	if a := testing.AllocsPerRun(1000, func() {
		rb.Insert(0, at+1460, at+2920, 1)
		rb.Insert(0, at, at+1460, 0)
		at += 2920
	}); a != 0 {
		t.Errorf("reorder insert+heal allocates %v objects per packet pair, want 0", a)
	}
}

// TestDownloadAllocBudget bounds a complete 4 MB download — testbed
// construction included — end to end. The ceilings sit ~25% above the
// measured totals after the timer-wheel/batch-delivery/arena round
// (~690 allocs for MP2, ~360 for single-path TCP, from ~54k and ~41k
// two rounds earlier), so a change that reintroduces per-packet or
// per-event allocation anywhere in the stack fails this test long
// before it shows up in EXPERIMENTS.md.
func TestDownloadAllocBudget(t *testing.T) {
	budgets := []struct {
		transport experiment.Transport
		limit     float64
	}{
		{experiment.MP2, 900},
		{experiment.SPWiFi, 500},
	}
	for _, bt := range budgets {
		run := func() {
			tb := experiment.NewTestbed(experiment.TestbedConfig{
				WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
				SampleProfiles: true, WarmRadio: true, Seed: 1,
			})
			res := tb.Run(experiment.RunConfig{Transport: bt.transport, Size: 4 * units.MB})
			if !res.Completed {
				t.Fatal("download failed")
			}
		}
		run() // warm shared package state before counting
		if a := testing.AllocsPerRun(5, run); a > bt.limit {
			t.Errorf("%v 4MB download allocates %v objects, budget %v", bt.transport, a, bt.limit)
		}
	}
}
