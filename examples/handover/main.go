// Handover demonstrates the paper's §6 mobility argument: when the
// user walks out of WiFi range mid-download, single-path TCP stalls
// (and would eventually reset), while MPTCP shifts seamlessly to the
// cellular subflow, reinjects the bytes stranded on the dead path, and
// shifts back when WiFi returns — no data or connection lost.
//
// The example also shows the backup-mode policy (Paasch et al.,
// CellNet 2012, cited in §7): the cellular path is kept silent until
// the WiFi path actually fails.
package main

import (
	"fmt"

	"mptcplab/internal/experiment"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/units"
	"mptcplab/internal/web"
)

const (
	downloadSize = 24 * units.MB
	outageStart  = 2 * sim.Second
	outageEnd    = 8 * sim.Second
)

func main() {
	fmt.Printf("24MB download; WiFi dies at t=%v, returns at t=%v\n\n", outageStart, outageEnd)
	fmt.Printf("%-22s %-10s %-12s %s\n", "mode", "done", "at outage+5s", "notes")
	run("SP-WiFi", nil)
	run("MP-2 (lowest-rtt)", nil)
	run("MP-2 (backup mode)", []bool{false, true})
	fmt.Println()
	fmt.Println("Single-path TCP strands the download behind exponential RTO backoff.")
	fmt.Println("Full MPTCP barely notices the outage. Backup mode survives it but")
	fmt.Println("switches back to the recovered (cold, cwnd=1) WiFi path as soon as it")
	fmt.Println("answers one probe, silencing cellular — the slow WiFi re-use problem")
	fmt.Println("the paper points out is unexplored in Paasch et al. (§7).")
}

func run(mode string, backup []bool) {
	tb := experiment.NewTestbed(experiment.TestbedConfig{
		WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
		SampleProfiles: false, WarmRadio: true, Seed: 11,
	})
	cfg := mptcp.DefaultConfig()
	locals := []seg.Addr{tb.WiFiAddr, tb.CellAddr}
	if mode == "SP-WiFi" {
		locals = locals[:1]
	}
	if backup != nil {
		cfg.Scheduler = "backup"
	}

	fs := &web.FileServer{SizeFor: func(int) int { return downloadSize }}
	var serverConn *mptcp.Conn
	srv := mptcp.NewServer(tb.Server, tb.Net, experiment.ServerPort, cfg, tb.RNG.Child("srv"))
	srv.OnConn = func(c *mptcp.Conn) {
		serverConn = c
		fs.ServeStream(web.MPTCPStream{Conn: c})
	}
	conn := mptcp.Dial(tb.Net, tb.Client, mptcp.DialOpts{
		LocalAddrs: locals,
		Labels:     []string{"wifi", "cell"}[:len(locals)],
		ServerAddr: tb.SrvAddr,
		Backup:     backup,
		Config:     cfg,
	}, tb.RNG.Child("cli"))
	g := web.NewGetter(web.MPTCPStream{Conn: conn})

	var done sim.Time = -1
	g.Get(downloadSize, func() { done = tb.Sim.Now() })

	tb.Sim.At(outageStart, "wifi-down", func() {
		tb.WiFiUp.SetDown(true)
		tb.WiFiDown.SetDown(true)
	})
	tb.Sim.At(outageEnd, "wifi-up", func() {
		tb.WiFiUp.SetDown(false)
		tb.WiFiDown.SetDown(false)
	})

	tb.Sim.RunUntil(outageStart + 5*sim.Second)
	during := g.BytesReceived
	tb.Sim.RunUntil(5 * sim.Minute)

	status := "unfinished at 5min"
	if done >= 0 {
		status = fmt.Sprintf("%.1fs", done.Seconds())
	}
	notes := ""
	if serverConn != nil && serverConn.Reinjections > 0 {
		notes = fmt.Sprintf("%d stranded chunks reinjected", serverConn.Reinjections)
	}
	fmt.Printf("%-22s %-10s %-12s %s\n", mode, status,
		units.ByteCount(during).String(), notes)
}
