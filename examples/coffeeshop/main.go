// Coffeeshop reproduces the paper's §4.1 "effect of background
// traffic" scenario: a crowded public hotspot on a Friday afternoon,
// where the WiFi path is lossy and wildly variable. It shows the
// paper's two findings for that setting — WiFi is no longer reliably
// the best path, and MPTCP offloads traffic to the steadier cellular
// network, staying close to the best available path.
package main

import (
	"fmt"

	"mptcplab/internal/experiment"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/stats"
	"mptcplab/internal/units"
)

func main() {
	fmt.Println("coffee-shop hotspot (lossy public WiFi) + AT&T LTE")
	fmt.Println()
	sizes := []units.ByteCount{64 * units.KB, 512 * units.KB, 4 * units.MB}
	configs := []experiment.RunConfig{
		{Transport: experiment.SPWiFi},
		{Transport: experiment.SPCell},
		{Transport: experiment.MP2, Controller: "coupled"},
	}
	const reps = 5

	for _, size := range sizes {
		fmt.Printf("-- %v --\n", size)
		for _, base := range configs {
			rc := base
			rc.Size = size
			times := stats.New()
			share := stats.New()
			for rep := 0; rep < reps; rep++ {
				tb := experiment.NewTestbed(experiment.TestbedConfig{
					WiFi: pathmodel.CoffeeShop(), Cell: pathmodel.ATT(),
					SampleProfiles: true, WarmRadio: true,
					Seed: int64(rep)*131 + int64(size),
				})
				res := tb.Run(rc)
				if res.Completed {
					times.Add(res.DownloadTime.Seconds())
					share.Add(res.CellShare())
				}
			}
			fmt.Printf("  %-10s median %6.3fs  (min %.3f max %.3f)",
				rc.Transport, times.Median(), times.Min(), times.Max())
			if rc.Transport == experiment.MP2 {
				fmt.Printf("  cellular share %.0f%%", share.Mean()*100)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("On an unreliable hotspot, MPTCP shifts load to cellular and")
	fmt.Println("tracks the best path without knowing in advance which it is (§4.1).")
}
