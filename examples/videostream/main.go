// Videostream reproduces the paper's §6 discussion and Table 7: modern
// video services (Netflix, YouTube) fetch a large prefetch burst and
// then periodic smaller blocks over a persistent connection. The
// example replays both measured device profiles over 2-path MPTCP and
// over single-path WiFi, reporting per-block fetch latency — the
// quantity that decides whether playback stalls.
package main

import (
	"fmt"

	"mptcplab/internal/experiment"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/stats"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
	"mptcplab/internal/web"
)

// deviceProfile mirrors Table 7's measured streaming workloads.
type deviceProfile struct {
	Name     string
	Prefetch units.ByteCount
	Block    units.ByteCount
	Period   sim.Time
	Blocks   int
}

var profiles = []deviceProfile{
	{Name: "Netflix/Android", Prefetch: 40 * units.MB, Block: 5 * units.MB, Period: 72 * sim.Second, Blocks: 6},
	{Name: "Netflix/iPad", Prefetch: 15 * units.MB, Block: 1843 * units.KB, Period: 10 * sim.Second, Blocks: 12},
	{Name: "YouTube", Prefetch: 12 * units.MB, Block: 512 * units.KB, Period: 5 * sim.Second, Blocks: 20},
}

func main() {
	fmt.Println("video streaming over MPTCP (paper §6, Table 7 workloads)")
	for _, p := range profiles {
		fmt.Printf("\n== %s: prefetch %v, then %d blocks of %v every %v ==\n",
			p.Name, p.Prefetch, p.Blocks, p.Block, p.Period)
		for _, mode := range []string{"SP-WiFi", "MP-2"} {
			stream(p, mode)
		}
	}
}

func stream(p deviceProfile, mode string) {
	tb := experiment.NewTestbed(experiment.TestbedConfig{
		WiFi:           pathmodel.ComcastHome(),
		Cell:           pathmodel.ATT(),
		SampleProfiles: true,
		WarmRadio:      true,
		Seed:           7,
	})
	cfg := mptcp.DefaultConfig()

	// Persistent connection: the server keeps serving GETs.
	fs := &web.FileServer{CloseAfter: -1, SizeFor: func(i int) int {
		if i == 0 {
			return int(p.Prefetch)
		}
		return int(p.Block)
	}}

	var st web.Stream
	switch mode {
	case "SP-WiFi":
		tcpCfg := cfg.TCP
		lis := tcp.Listen(tb.Server, tb.Net, experiment.ServerPort, tcpCfg, tb.RNG.Child("srv"))
		lis.OnAccept = func(ep *tcp.Endpoint, syn *seg.Segment) bool {
			fs.ServeStream(web.TCPStream{EP: ep})
			return true
		}
		ep := tcp.NewEndpoint(tb.Client, tb.Net, tb.WiFiAddr, tb.SrvAddr, tcpCfg, tb.RNG.Child("cli"))
		st = web.TCPStream{EP: ep}
	default:
		srv := mptcp.NewServer(tb.Server, tb.Net, experiment.ServerPort, cfg, tb.RNG.Child("srv"))
		srv.OnConn = func(c *mptcp.Conn) { fs.ServeStream(web.MPTCPStream{Conn: c}) }
		conn := mptcp.Dial(tb.Net, tb.Client, mptcp.DialOpts{
			LocalAddrs: []seg.Addr{tb.WiFiAddr, tb.CellAddr},
			Labels:     []string{"wifi", "cell"},
			ServerAddr: tb.SrvAddr,
			Config:     cfg,
		}, tb.RNG.Child("cli"))
		st = web.MPTCPStream{Conn: conn}
	}

	getter := web.NewGetter(st)
	blockTimes := stats.New()
	var prefetchTime sim.Time

	// Prefetch, then schedule periodic block fetches.
	start := tb.Sim.Now()
	var fetchBlock func(i int)
	fetchBlock = func(i int) {
		issued := tb.Sim.Now()
		getter.Get(int(p.Block), func() {
			blockTimes.Add((tb.Sim.Now() - issued).Seconds())
			if i+1 < p.Blocks {
				// Next block at the next period boundary.
				wait := p.Period - (tb.Sim.Now() - issued)
				if wait < 0 {
					wait = 0
				}
				tb.Sim.After(wait, "video.block", func() { fetchBlock(i + 1) })
			} else {
				tb.Sim.Stop()
			}
		})
	}
	getter.Get(int(p.Prefetch), func() {
		prefetchTime = tb.Sim.Now() - start
		fetchBlock(0)
	})

	if tcpStream, ok := st.(web.TCPStream); ok {
		tcpStream.EP.Connect()
	}
	tb.Sim.RunUntil(60 * sim.Minute)

	if blockTimes.N() == 0 {
		fmt.Printf("  %-8s did not complete\n", mode)
		return
	}
	budget := p.Period.Seconds()
	stalls := blockTimes.FractionAbove(budget)
	fmt.Printf("  %-8s prefetch %6.1fs | block fetch mean %5.2fs p95 %5.2fs max %5.2fs | blocks over period budget: %.0f%%\n",
		mode, prefetchTime.Seconds(), blockTimes.Mean(),
		blockTimes.Quantile(0.95), blockTimes.Max(), stalls*100)
}
