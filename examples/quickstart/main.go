// Quickstart: download one 4 MB object three ways — single-path TCP
// over WiFi, single-path TCP over AT&T LTE, and 2-path MPTCP using
// both — and compare download times and path usage. This is the
// paper's core measurement in miniature.
package main

import (
	"fmt"

	"mptcplab/internal/experiment"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/units"
)

func main() {
	fmt.Println("mptcplab quickstart: 4MB download, home WiFi + AT&T LTE")
	fmt.Println()

	configs := []experiment.RunConfig{
		{Transport: experiment.SPWiFi, Size: 4 * units.MB},
		{Transport: experiment.SPCell, Size: 4 * units.MB},
		{Transport: experiment.MP2, Controller: "coupled", Size: 4 * units.MB},
	}
	for _, rc := range configs {
		// A fresh testbed per measurement, like the paper's fresh
		// connections: no cached TCP metrics carry over.
		tb := experiment.NewTestbed(experiment.TestbedConfig{
			WiFi:           pathmodel.ComcastHome(),
			Cell:           pathmodel.ATT(),
			SampleProfiles: false, // fixed conditions for a clean comparison
			WarmRadio:      true,
			Seed:           42,
		})
		res := tb.Run(rc)
		if !res.Completed {
			fmt.Printf("%-16s did not complete\n", rc.Transport)
			continue
		}
		fmt.Printf("%-16s %6.2f s", rc.Transport, res.DownloadTime.Seconds())
		if rc.Transport == experiment.MP2 {
			fmt.Printf("   (%.0f%% of bytes over cellular, %d subflows)",
				res.CellShare()*100, res.Subflows)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("MPTCP tracks the best available path and usually beats it by")
	fmt.Println("pooling both — the paper's headline result (§4).")
}
