// Webbrowse models the paper's motivating workload (§1): a page load
// of many small-to-medium Web objects fetched sequentially over one
// connection. It compares single-path TCP, stock 2-path MPTCP, and
// MPTCP with the simultaneous-SYN patch (§4.1.2), which matters most
// for exactly this kind of short, RTT-bound transfer.
package main

import (
	"fmt"

	"mptcplab/internal/experiment"
	"mptcplab/internal/mptcp"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/seg"
	"mptcplab/internal/sim"
	"mptcplab/internal/tcp"
	"mptcplab/internal/units"
	"mptcplab/internal/web"
)

// A typical page: one HTML document, a few stylesheets/scripts, images.
var pageObjects = []int{
	64 * units.KB,                // html
	16 * units.KB, 24 * units.KB, // css, js
	8 * units.KB, 128 * units.KB, 96 * units.KB, 256 * units.KB, // images
	512 * units.KB, // hero image
}

func main() {
	total := 0
	for _, o := range pageObjects {
		total += o
	}
	fmt.Printf("web page load: %d objects, %v total, home WiFi + AT&T LTE\n\n",
		len(pageObjects), units.ByteCount(total))

	for _, mode := range []string{"SP-WiFi", "MP-2 (delayed SYN)", "MP-2 (simultaneous SYN)"} {
		var times []float64
		for seed := int64(1); seed <= 5; seed++ {
			times = append(times, loadPage(mode, seed).Seconds())
		}
		mean := 0.0
		for _, t := range times {
			mean += t
		}
		mean /= float64(len(times))
		fmt.Printf("%-26s page load %.3fs (mean of %d runs)\n", mode, mean, len(times))
	}
}

func loadPage(mode string, seed int64) sim.Time {
	tb := experiment.NewTestbed(experiment.TestbedConfig{
		WiFi: pathmodel.ComcastHome(), Cell: pathmodel.ATT(),
		SampleProfiles: true, WarmRadio: true, Seed: seed,
	})
	cfg := mptcp.DefaultConfig()
	cfg.SimultaneousSYN = mode == "MP-2 (simultaneous SYN)"

	idx := 0
	fs := &web.FileServer{CloseAfter: -1, SizeFor: func(i int) int {
		if i < len(pageObjects) {
			return pageObjects[i]
		}
		return -1
	}}

	var st web.Stream
	if mode == "SP-WiFi" {
		lis := tcp.Listen(tb.Server, tb.Net, experiment.ServerPort, cfg.TCP, tb.RNG.Child("srv"))
		lis.OnAccept = func(ep *tcp.Endpoint, syn *seg.Segment) bool {
			fs.ServeStream(web.TCPStream{EP: ep})
			return true
		}
		ep := tcp.NewEndpoint(tb.Client, tb.Net, tb.WiFiAddr, tb.SrvAddr, cfg.TCP, tb.RNG.Child("cli"))
		st = web.TCPStream{EP: ep}
		ep.Connect()
	} else {
		srv := mptcp.NewServer(tb.Server, tb.Net, experiment.ServerPort, cfg, tb.RNG.Child("srv"))
		srv.OnConn = func(c *mptcp.Conn) { fs.ServeStream(web.MPTCPStream{Conn: c}) }
		conn := mptcp.Dial(tb.Net, tb.Client, mptcp.DialOpts{
			LocalAddrs: []seg.Addr{tb.WiFiAddr, tb.CellAddr},
			Labels:     []string{"wifi", "cell"},
			ServerAddr: tb.SrvAddr,
			Config:     cfg,
		}, tb.RNG.Child("cli"))
		st = web.MPTCPStream{Conn: conn}
	}

	g := web.NewGetter(st)
	start := tb.Sim.Now()
	var done sim.Time
	var next func()
	next = func() {
		if idx >= len(pageObjects) {
			done = tb.Sim.Now() - start
			tb.Sim.Stop()
			return
		}
		size := pageObjects[idx]
		idx++
		g.Get(size, next)
	}
	next()
	tb.Sim.RunUntil(5 * sim.Minute)
	return done
}
