// Rushhour pushes the coffee-shop scenario to fleet scale: 200 phones
// behind ONE access point, each firing small web-style downloads at an
// increasing arrival rate. At low load the AP absorbs everything and
// single-path WiFi looks fine; as the offered load climbs past the
// AP's capacity, WiFi-only tail latency explodes while MPTCP drains
// the overflow onto cellular, keeping the p99 flow-completion time
// bounded. This is the fleet analogue of §4.1's background-traffic
// finding: the benefit of a second path shows up first in the tail.
package main

import (
	"fmt"

	"mptcplab/internal/load"
	"mptcplab/internal/pathmodel"
	"mptcplab/internal/sim"
)

func main() {
	fmt.Println("rush hour: 200 clients on one coffee-shop AP, small-flow mix")
	fmt.Println()

	transports := []struct {
		name string
		mix  load.TransportMix
	}{
		{"wifi-only", load.TransportMix{WiFi: 1}},
		{"mptcp", load.TransportMix{MPTCP: 1}},
	}

	fmt.Printf("%-12s %8s %10s %10s %10s %9s %8s\n",
		"transport", "rate/s", "fct p50", "fct p99", "ap-down", "cell", "done")
	for _, rate := range []float64{2, 8, 20} {
		for _, tr := range transports {
			res := load.Run(load.Config{
				Clients:    200,
				Rate:       rate,
				Sizes:      load.SmallFlowMix(),
				Transports: tr.mix,
				WiFi:       pathmodel.CoffeeShop(),
				Cell:       pathmodel.ATT(),
				Duration:   60 * sim.Second,
				Drain:      60 * sim.Second,
				Seed:       42,
				SelfCheck:  true,
			})
			if res.Violations > 0 {
				fmt.Printf("PROTOCOL VIOLATIONS: %d, first: %s\n",
					res.Violations, res.FirstViolation)
			}
			var apDown float64
			for _, l := range res.Links {
				if l.Name == "ap-down" {
					apDown = l.Utilization
				}
			}
			fmt.Printf("%-12s %8.0f %9.3fs %9.3fs %9.0f%% %8.0f%% %4d/%d\n",
				tr.name, rate, res.FCTp50.Value(), res.FCTp99.Value(),
				apDown*100, res.CellShare()*100, res.Completed, res.Offered)
		}
		fmt.Println()
	}
	fmt.Println("As the AP saturates, WiFi-only p99 balloons; MPTCP sheds the")
	fmt.Println("overflow onto cellular and keeps the tail an order of magnitude lower.")
}
