module mptcplab

go 1.22
