// Package mptcplab is a from-scratch Go reproduction of "A
// Measurement-based Study of MultiPath TCP Performance over Wireless
// Networks" (Chen, Lim, Gibbens, Nahum, Khalili, Towsley — IMC 2013).
//
// The paper measured Linux MPTCP v0.86 over real WiFi and cellular
// carriers; this repository rebuilds the whole stack on a
// deterministic packet-level simulator — TCP New Reno with SACK, MPTCP
// with its coupled/olia/reno congestion controllers and lowest-RTT
// scheduler, calibrated WiFi/LTE/3G path models with bufferbloat and
// link-layer ARQ, an HTTP-like workload layer, and a pcap/tcptrace
// analysis pipeline — and regenerates every table and figure of the
// paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=Fig2 -benchtime=1x .
//
// Executables:
//
//	cmd/mptcpsim   - run one measured download (optionally with pcap capture)
//	cmd/paperbench - regenerate all tables and figures
//	cmd/tracestat  - analyze captures, tcptrace-style
package mptcplab
